// Package prefix implements the paper's primary contribution: the PreFix
// optimizer and runtime. A Plan is the product of profile analysis — the
// preallocated region layout, the per-counter id patterns, the id→slot
// mapping, and the recycling configuration. The Allocator executes the
// plan at "runtime" with the exact instrumentation semantics of the
// paper's Figures 4 (malloc), 5 (free), 6 (realloc) and 7 (recycling).
package prefix

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"prefix/internal/context"
	"prefix/internal/hds"
	"prefix/internal/layout"
	"prefix/internal/mem"
)

// RegionBase is where the preallocated hot-object region lives in the
// simulated address space, far from the general heap.
const RegionBase mem.Addr = 0x4000_0000_0000

// Variant selects which objects the plan places (§3.2's three PreFix
// configurations).
type Variant uint8

const (
	// VariantHot places all hot objects in allocation order.
	VariantHot Variant = iota + 1
	// VariantHDS places only reconstituted-HDS objects, reordered by the
	// layout algorithm.
	VariantHDS
	// VariantHDSHot places reconstituted HDS objects first and the
	// remaining hot objects at the end of the region.
	VariantHDSHot
)

func (v Variant) String() string {
	switch v {
	case VariantHot:
		return "prefix:hot"
	case VariantHDS:
		return "prefix:hds"
	case VariantHDSHot:
		return "prefix:hds+hot"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Slot is a reserved range inside the preallocated region.
type Slot struct {
	Offset uint64
	Size   uint64
}

// PlanCounter is one runtime counter: the sites that share it, the id
// pattern that detects hot instances, and either a static id→slot mapping
// or a recycling slot ring.
type PlanCounter struct {
	Sites   []mem.SiteID
	Kind    context.PatternKind
	Set     []mem.Instance `json:",omitempty"` // Fixed
	Start   mem.Instance   `json:",omitempty"` // Regular
	Step    mem.Instance   `json:",omitempty"`
	Count   uint64         `json:",omitempty"`
	SlotOf  map[mem.Instance]Slot
	Recycle *RecyclePlan `json:",omitempty"`
	// Sigs enables the hybrid context of §2.2.2 ("it could make sense to
	// use both mechanisms together, object IDs and calling context"):
	// when present, a matching instance id is only captured if the
	// allocation's call-stack signature also matches the one observed in
	// the profiling run — protecting fixed-id plans against
	// non-deterministic allocation orders.
	Sigs map[mem.Instance]mem.StackSig `json:",omitempty"`
}

// RecyclePlan configures Figure 7 object recycling for a counter: N slots
// reused round-robin by `(Counter-1) mod N`.
type RecyclePlan struct {
	N        int
	SlotSize uint64
	// Base is the region offset of slot 0; slot i starts at
	// Base + i*SlotSize.
	Base uint64
}

// Pattern reconstructs the runtime matcher for the counter.
func (c *PlanCounter) Pattern() context.Pattern {
	return context.Pattern{
		Kind:  c.Kind,
		Set:   c.Set,
		Start: c.Start,
		Step:  c.Step,
		Count: c.Count,
	}
}

// Plan is the full optimization product consumed by the Allocator and the
// binary-rewriting model.
type Plan struct {
	Benchmark  string
	Variant    Variant
	RegionSize uint64
	Counters   []PlanCounter
	// SiteCounter maps every instrumented malloc site to its counter.
	SiteCounter map[mem.SiteID]int
	// PlacedObjects is the number of distinct profile objects given
	// static slots (recycled slots excluded).
	PlacedObjects int
	// HDSObjects is how many placed objects belong to reconstituted
	// streams (for Table 5's "HDS" column).
	HDSObjects int
	// Order is the placement order of profile objects (reporting only).
	Order []mem.ObjectID `json:",omitempty"`
}

// Region returns the preallocated region as an address range.
func (p *Plan) Region() mem.Range {
	return mem.Range{Start: RegionBase, Size: p.RegionSize}
}

// NumSites returns the instrumented site count (Table 2 "#sites").
func (p *Plan) NumSites() int { return len(p.SiteCounter) }

// NumCounters returns the counter count (Table 2 "#counters").
func (p *Plan) NumCounters() int { return len(p.Counters) }

// KindsString renders the pattern kinds like Table 2's "type" column.
func (p *Plan) KindsString() string {
	seen := make(map[context.PatternKind]bool)
	for i := range p.Counters {
		seen[p.Counters[i].Kind] = true
	}
	var s string
	for _, k := range []context.PatternKind{context.KindFixed, context.KindRegular, context.KindAll} {
		if seen[k] {
			if s != "" {
				s += " & "
			}
			s += k.String()
		}
	}
	if s == "" {
		return "none"
	}
	return s + " ids"
}

// Validate checks plan consistency: slots inside the region, no overlap,
// every site wired to a valid counter.
func (p *Plan) Validate() error {
	type span struct {
		off, size uint64
		what      string
	}
	var spans []span
	for i := range p.Counters {
		c := &p.Counters[i]
		for id, s := range c.SlotOf {
			if s.Size == 0 {
				return fmt.Errorf("prefix: counter %d id %d has zero-size slot", i, id)
			}
			spans = append(spans, span{s.Offset, s.Size, fmt.Sprintf("counter %d id %d", i, id)})
		}
		if r := c.Recycle; r != nil {
			if r.N <= 0 || r.SlotSize == 0 {
				return fmt.Errorf("prefix: counter %d has invalid recycle plan %+v", i, *r)
			}
			spans = append(spans, span{r.Base, uint64(r.N) * r.SlotSize, fmt.Sprintf("counter %d recycle ring", i)})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	for i, s := range spans {
		if s.off+s.size > p.RegionSize {
			return fmt.Errorf("prefix: %s [%d,%d) exceeds region size %d", s.what, s.off, s.off+s.size, p.RegionSize)
		}
		if i > 0 && spans[i-1].off+spans[i-1].size > s.off {
			return fmt.Errorf("prefix: %s overlaps %s", spans[i-1].what, s.what)
		}
	}
	for site, c := range p.SiteCounter {
		if c < 0 || c >= len(p.Counters) {
			return fmt.Errorf("prefix: site %v wired to missing counter %d", site, c)
		}
	}
	return nil
}

// WriteJSON serializes the plan.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON deserializes a plan written by WriteJSON.
func ReadJSON(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("prefix: decoding plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Summary is the profile-analysis byproduct used for reporting (Figure 2
// style output and Table 5 profiling columns).
type Summary struct {
	OHDS        []hds.Stream
	Recon       *layout.Reconstitution
	HotObjects  int
	HotInHDS    int
	CoveragePct float64
	// Ledger is the decision record of the plan build, when the caller
	// asked for one (PlanConfig.Ledger); nil otherwise.
	Ledger *Ledger
}
