package prefix

import (
	"testing"

	"prefix/internal/cachesim"
	"prefix/internal/context"
	"prefix/internal/mem"
)

// staticPlan builds a hand-written plan: site 1 uses a Fixed {1,3}
// pattern with two slots; site 2 is uninstrumented.
func staticPlan() *Plan {
	return &Plan{
		Benchmark:  "test",
		Variant:    VariantHot,
		RegionSize: 256,
		Counters: []PlanCounter{{
			Sites: []mem.SiteID{1},
			Kind:  context.KindFixed,
			Set:   []mem.Instance{1, 3},
			SlotOf: map[mem.Instance]Slot{
				1: {Offset: 0, Size: 64},
				3: {Offset: 64, Size: 32},
			},
		}},
		SiteCounter:   map[mem.SiteID]int{1: 0},
		PlacedObjects: 2,
	}
}

// ringPlan builds a recycling plan: site 5, All ids, 2 slots of 64 bytes.
func ringPlan() *Plan {
	return &Plan{
		Benchmark:  "test",
		Variant:    VariantHot,
		RegionSize: 128,
		Counters: []PlanCounter{{
			Sites:   []mem.SiteID{5},
			Kind:    context.KindAll,
			Recycle: &RecyclePlan{N: 2, SlotSize: 64, Base: 0},
		}},
		SiteCounter: map[mem.SiteID]int{5: 0},
	}
}

func cost() cachesim.CostModel { return cachesim.DefaultCost() }

func TestStaticCapture(t *testing.T) {
	a := NewAllocator(staticPlan(), cost())
	// Instance 1: matches, fits.
	a1, _ := a.Malloc(1, 0, 48)
	if a1 != RegionBase {
		t.Errorf("instance 1 should land at region base, got %v", a1)
	}
	// Instance 2: no match -> heap.
	a2, _ := a.Malloc(1, 0, 48)
	if a.Region().Contains(a2) {
		t.Error("instance 2 must not be captured")
	}
	// Instance 3: matches second slot.
	a3, _ := a.Malloc(1, 0, 24)
	if a3 != RegionBase+64 {
		t.Errorf("instance 3 at %v, want %v", a3, RegionBase+64)
	}
	// Instance 4+: fallback.
	a4, _ := a.Malloc(1, 0, 8)
	if a.Region().Contains(a4) {
		t.Error("instance 4 must not be captured")
	}
	c := a.Capture()
	if c.MallocsAvoided != 2 || c.StaticCaptured != 2 || c.FallbackMallocs != 2 {
		t.Errorf("capture = %+v", c)
	}
}

func TestSizeGuard(t *testing.T) {
	// Figure 4: "ObjectSize <= PreallocSize[ObjectID]" — an oversized
	// instance falls back to malloc.
	a := NewAllocator(staticPlan(), cost())
	addr, _ := a.Malloc(1, 0, 100) // slot is 64
	if a.Region().Contains(addr) {
		t.Error("oversized object must not be captured")
	}
}

func TestUninstrumentedSite(t *testing.T) {
	a := NewAllocator(staticPlan(), cost())
	addr, instr := a.Malloc(2, 0, 16)
	if a.Region().Contains(addr) {
		t.Error("uninstrumented site captured")
	}
	if instr != cost().MallocInstr {
		t.Errorf("uninstrumented malloc cost = %d", instr)
	}
}

func TestFreeMarksSlot(t *testing.T) {
	// Figure 5: freeing a preallocated object marks it, no heap call.
	a := NewAllocator(staticPlan(), cost())
	addr, _ := a.Malloc(1, 0, 48)
	instr := a.Free(addr)
	if instr >= cost().FreeInstr {
		t.Errorf("region free should be cheap, cost %d", instr)
	}
	if a.Capture().FreesAvoided != 1 {
		t.Error("free not counted as avoided")
	}
	// Heap free pays full cost plus the range check.
	heapAddr, _ := a.Malloc(2, 0, 16)
	if got := a.Free(heapAddr); got < cost().FreeInstr {
		t.Errorf("heap free cost = %d", got)
	}
}

func TestReallocInPlace(t *testing.T) {
	// Figure 6 common case: the new size fits the preallocated slot.
	a := NewAllocator(staticPlan(), cost())
	addr, _ := a.Malloc(1, 0, 48)
	na, _ := a.Realloc(addr, 60)
	if na != addr {
		t.Error("fitting realloc should stay in place")
	}
	if a.Capture().ReallocsInPlace != 1 {
		t.Error("in-place realloc not counted")
	}
}

func TestReallocMovesOut(t *testing.T) {
	// Figure 6: a growing object is copied out of the region and the
	// slot is marked free.
	a := NewAllocator(staticPlan(), cost())
	addr, _ := a.Malloc(1, 0, 48)
	na, _ := a.Realloc(addr, 500)
	if a.Region().Contains(na) {
		t.Error("grown object must leave the region")
	}
	if a.Capture().ReallocsMoved != 1 {
		t.Error("move not counted")
	}
	// The slot must be reusable... by nothing in a Fixed plan, but it
	// must be marked free (no double occupancy tracking leaks).
	if a.slotLive[0] {
		t.Error("slot still marked live after realloc-out")
	}
}

func TestHeapRealloc(t *testing.T) {
	a := NewAllocator(staticPlan(), cost())
	addr, _ := a.Malloc(2, 0, 32)
	na, _ := a.Realloc(addr, 64)
	if a.Region().Contains(na) {
		t.Error("heap realloc entered the region")
	}
}

func TestRecyclingRing(t *testing.T) {
	// Figure 7: Counter mod N slot reuse.
	a := NewAllocator(ringPlan(), cost())
	s0, _ := a.Malloc(5, 0, 64) // id 1 -> slot 0
	s1, _ := a.Malloc(5, 0, 64) // id 2 -> slot 1
	if s0 != RegionBase || s1 != RegionBase+64 {
		t.Fatalf("slots = %v, %v", s0, s1)
	}
	// Ring full: id 3 maps to slot 0, which is occupied -> fallback.
	f, _ := a.Malloc(5, 0, 64)
	if a.Region().Contains(f) {
		t.Error("occupied slot must fall back to malloc")
	}
	// Free slot 0; id 4 maps to slot 1 (occupied) -> fallback; id 5 maps
	// to slot 0 (free) -> reuse.
	a.Free(s0)
	f2, _ := a.Malloc(5, 0, 64)
	if a.Region().Contains(f2) {
		t.Error("id 4 maps to occupied slot 1")
	}
	r, _ := a.Malloc(5, 0, 64)
	if r != s0 {
		t.Errorf("id 5 should recycle slot 0: got %v", r)
	}
	c := a.Capture()
	if c.RecycledCaptured != 3 {
		t.Errorf("recycled = %d, want 3", c.RecycledCaptured)
	}
}

func TestRecyclingSizeGuard(t *testing.T) {
	a := NewAllocator(ringPlan(), cost())
	addr, _ := a.Malloc(5, 0, 100) // larger than the 64-byte slot
	if a.Region().Contains(addr) {
		t.Error("oversized object entered the ring")
	}
}

func TestRecyclingRealloc(t *testing.T) {
	a := NewAllocator(ringPlan(), cost())
	addr, _ := a.Malloc(5, 0, 32)
	na, _ := a.Realloc(addr, 64)
	if na != addr {
		t.Error("fitting ring realloc should stay in place")
	}
	na2, _ := a.Realloc(addr, 256)
	if a.Region().Contains(na2) {
		t.Error("grown ring object must leave the region")
	}
	// Slot must be free for the next cycle.
	a.Malloc(5, 0, 64) // id 2 -> slot 1
	a.Malloc(5, 0, 64) // id 3 -> slot 0 (freed by realloc)
	if a.Capture().RecycledCaptured != 3 {
		t.Errorf("recycled = %d, want 3", a.Capture().RecycledCaptured)
	}
}

func TestCallsAvoided(t *testing.T) {
	a := NewAllocator(ringPlan(), cost())
	for i := 0; i < 10; i++ {
		addr, _ := a.Malloc(5, 0, 64)
		a.Free(addr)
	}
	if got := a.Capture().CallsAvoided(); got != 10 {
		t.Errorf("calls avoided = %d, want 10", got)
	}
}

func TestPeakBytesIncludesRegion(t *testing.T) {
	p := staticPlan()
	a := NewAllocator(p, cost())
	if a.PeakBytes() < p.RegionSize {
		t.Error("peak must include the preallocated region")
	}
}

func TestNameReflectsVariant(t *testing.T) {
	if NewAllocator(staticPlan(), cost()).Name() != "prefix:hot" {
		t.Error("allocator name should reflect variant")
	}
}
