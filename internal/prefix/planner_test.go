package prefix

import (
	"bytes"
	"testing"

	"prefix/internal/context"
	"prefix/internal/mem"
	"prefix/internal/trace"
)

// synthTrace builds a profile with two tandem hot sites forming a stream
// (objects visited together repeatedly), one churn site suitable for
// recycling, and cold noise.
func synthTrace() *trace.Analysis {
	r := trace.NewRecorder()
	addr := mem.Addr(0x10000)
	alloc := func(site mem.SiteID, size uint64) mem.Addr {
		a := addr
		r.Alloc(site, mem.StackSig(site), a, size)
		addr += mem.Addr(size + 16)
		return a
	}
	// Tandem pair: 8 rounds of (site1, site2), all hot.
	var pairs []mem.Addr
	for i := 0; i < 8; i++ {
		pairs = append(pairs, alloc(1, 32), alloc(2, 48))
		alloc(9, 24) // cold noise between pairs
	}
	// Churn site 3: 12 allocations, at most 2 live, all well accessed.
	var ring []mem.Addr
	for i := 0; i < 12; i++ {
		a := alloc(3, 64)
		for k := 0; k < 12; k++ {
			r.Access(a, 8, false)
		}
		ring = append(ring, a)
		if len(ring) > 2 {
			r.Free(ring[0])
			ring = ring[1:]
		}
	}
	// Repeated stream over the pairs.
	for rep := 0; rep < 30; rep++ {
		for _, p := range pairs {
			r.Access(p, 8, false)
		}
	}
	return trace.Analyze(r.Trace())
}

func TestBuildPlanEndToEnd(t *testing.T) {
	for _, v := range []Variant{VariantHot, VariantHDS, VariantHDSHot} {
		cfg := DefaultPlanConfig("synth", v)
		plan, sum, err := BuildPlan(synthTrace(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if plan.Variant != v || plan.Benchmark != "synth" {
			t.Errorf("plan meta wrong: %+v", plan)
		}
		if sum.HotObjects == 0 {
			t.Error("no hot objects in summary")
		}
	}
}

func TestBuildPlanRecycling(t *testing.T) {
	plan, _, err := BuildPlan(synthTrace(), DefaultPlanConfig("synth", VariantHot))
	if err != nil {
		t.Fatal(err)
	}
	foundRing := false
	for i := range plan.Counters {
		c := &plan.Counters[i]
		if c.Recycle != nil {
			foundRing = true
			if c.Kind != context.KindAll {
				t.Error("only All counters may recycle")
			}
			if c.Recycle.N != 3 {
				t.Errorf("ring N = %d, want 3 (peak live)", c.Recycle.N)
			}
		}
	}
	if !foundRing {
		t.Error("churn site should have been converted to a recycling ring")
	}
}

func TestBuildPlanRecyclingDisabled(t *testing.T) {
	cfg := DefaultPlanConfig("synth", VariantHot)
	cfg.RecycleRatio = 0
	plan, _, err := BuildPlan(synthTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Counters {
		if plan.Counters[i].Recycle != nil {
			t.Error("recycling must be disabled when ratio = 0")
		}
	}
}

func TestBuildPlanTandemSharing(t *testing.T) {
	plan, _, err := BuildPlan(synthTrace(), DefaultPlanConfig("synth", VariantHot))
	if err != nil {
		t.Fatal(err)
	}
	// Sites 1 and 2 allocate in tandem and must share a counter.
	if plan.SiteCounter[1] != plan.SiteCounter[2] {
		t.Errorf("tandem sites not sharing: %v", plan.SiteCounter)
	}
	// The cold-noise site must not be instrumented.
	if _, ok := plan.SiteCounter[9]; ok {
		t.Error("cold site instrumented")
	}
}

func TestBuildPlanVariantsDifferInPlacement(t *testing.T) {
	hot, _, err := BuildPlan(synthTrace(), DefaultPlanConfig("synth", VariantHot))
	if err != nil {
		t.Fatal(err)
	}
	hdsOnly, _, err := BuildPlan(synthTrace(), DefaultPlanConfig("synth", VariantHDS))
	if err != nil {
		t.Fatal(err)
	}
	if hot.PlacedObjects < hdsOnly.PlacedObjects {
		t.Errorf("Hot placement (%d) should cover at least the HDS placement (%d)",
			hot.PlacedObjects, hdsOnly.PlacedObjects)
	}
}

func TestBuildPlanNoHotObjects(t *testing.T) {
	r := trace.NewRecorder()
	r.Alloc(1, 0, 0x1000, 16)
	if _, _, err := BuildPlan(trace.Analyze(r.Trace()), DefaultPlanConfig("x", VariantHot)); err == nil {
		t.Error("profile without hot objects should error")
	}
}

func TestPlanJSONRoundtrip(t *testing.T) {
	plan, _, err := BuildPlan(synthTrace(), DefaultPlanConfig("synth", VariantHDSHot))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.RegionSize != plan.RegionSize || got.NumCounters() != plan.NumCounters() ||
		got.NumSites() != plan.NumSites() || got.Variant != plan.Variant {
		t.Error("roundtrip lost plan structure")
	}
}

func TestPlanValidateCatchesOverlap(t *testing.T) {
	p := &Plan{
		RegionSize: 64,
		Counters: []PlanCounter{{
			Sites: []mem.SiteID{1},
			Kind:  context.KindFixed,
			Set:   []mem.Instance{1, 2},
			SlotOf: map[mem.Instance]Slot{
				1: {Offset: 0, Size: 48},
				2: {Offset: 32, Size: 16}, // overlaps slot 1
			},
		}},
		SiteCounter: map[mem.SiteID]int{1: 0},
	}
	if p.Validate() == nil {
		t.Error("overlapping slots accepted")
	}
}

func TestPlanValidateCatchesOutOfRegion(t *testing.T) {
	p := &Plan{
		RegionSize: 32,
		Counters: []PlanCounter{{
			Sites:  []mem.SiteID{1},
			Kind:   context.KindFixed,
			Set:    []mem.Instance{1},
			SlotOf: map[mem.Instance]Slot{1: {Offset: 16, Size: 32}},
		}},
		SiteCounter: map[mem.SiteID]int{1: 0},
	}
	if p.Validate() == nil {
		t.Error("slot past region end accepted")
	}
}

func TestPlanValidateCatchesBadWiring(t *testing.T) {
	p := &Plan{SiteCounter: map[mem.SiteID]int{1: 3}}
	if p.Validate() == nil {
		t.Error("site wired to missing counter accepted")
	}
}

func TestVariantString(t *testing.T) {
	if VariantHot.String() != "prefix:hot" || VariantHDS.String() != "prefix:hds" || VariantHDSHot.String() != "prefix:hds+hot" {
		t.Error("variant strings wrong")
	}
}

func TestKindsString(t *testing.T) {
	plan, _, err := BuildPlan(synthTrace(), DefaultPlanConfig("synth", VariantHot))
	if err != nil {
		t.Fatal(err)
	}
	if plan.KindsString() == "none" {
		t.Error("plan should report pattern kinds")
	}
}
