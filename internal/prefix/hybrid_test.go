package prefix

import (
	"bytes"
	"testing"

	"prefix/internal/mem"
	"prefix/internal/trace"
)

// hybridProfile builds a profile for the §2.2.2 scenario: site 1
// allocates a cold setup object under stack 0xC0LD, then the hot object
// under stack 0x407 — so the hot id is {2} and its profiled signature is
// 0x407.
func hybridProfile() *trace.Analysis {
	r := trace.NewRecorder()
	r.Alloc(1, 0xC01D, 0x1000, 64) // instance 1: cold
	r.Alloc(1, 0x407, 0x2000, 64)  // instance 2: hot
	for i := 0; i < 50; i++ {
		r.Access(0x2000, 8, false)
	}
	r.Access(0x1000, 8, false)
	return trace.Analyze(r.Trace())
}

func hybridPlan(t *testing.T, hybrid bool) *Plan {
	t.Helper()
	cfg := DefaultPlanConfig("hybrid", VariantHot)
	cfg.HybridContext = hybrid
	plan, _, err := BuildPlan(hybridProfile(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestHybridPlanRecordsSigs(t *testing.T) {
	plan := hybridPlan(t, true)
	found := false
	for i := range plan.Counters {
		if plan.Counters[i].Sigs != nil {
			found = true
			for _, sig := range plan.Counters[i].Sigs {
				if sig != 0x407 {
					t.Errorf("recorded sig = %#x, want 0x407", sig)
				}
			}
		}
	}
	if !found {
		t.Fatal("hybrid plan carries no signatures")
	}
	if hybridPlan(t, false).Counters[0].Sigs != nil {
		t.Error("non-hybrid plan must not carry signatures")
	}
}

// TestHybridRejectsShiftedAllocation simulates a non-deterministic run
// where the allocation order shifted: instance 2 is now a *different*
// (cold) allocation under another call stack. The id matches; without
// the hybrid check it would be captured spuriously, with it the
// signature mismatch rejects it.
func TestHybridRejectsShiftedAllocation(t *testing.T) {
	run := func(hybrid bool) (*Allocator, mem.Addr) {
		a := NewAllocator(hybridPlan(t, hybrid), cost())
		a.Malloc(1, 0x407, 64)             // id 1 (the order shifted)
		addr, _ := a.Malloc(1, 0xDEAD, 64) // id 2, wrong context
		return a, addr
	}
	a, addr := run(false)
	if !a.Region().Contains(addr) {
		t.Fatal("precondition: without hybrid the shifted object is captured")
	}
	a, addr = run(true)
	if a.Region().Contains(addr) {
		t.Error("hybrid check failed to reject the shifted allocation")
	}
	if a.Capture().HybridRejects != 1 {
		t.Errorf("hybrid rejects = %d, want 1", a.Capture().HybridRejects)
	}
}

// TestHybridAcceptsMatchingContext: in a deterministic run the hybrid
// check changes nothing.
func TestHybridAcceptsMatchingContext(t *testing.T) {
	a := NewAllocator(hybridPlan(t, true), cost())
	a.Malloc(1, 0xC01D, 64)
	addr, _ := a.Malloc(1, 0x407, 64)
	if !a.Region().Contains(addr) {
		t.Error("matching id+context should be captured")
	}
	if a.Capture().HybridRejects != 0 {
		t.Error("no rejects expected")
	}
}

func TestHybridPlanJSONRoundtrip(t *testing.T) {
	plan := hybridPlan(t, true)
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Counters {
		if len(got.Counters[i].Sigs) != len(plan.Counters[i].Sigs) {
			t.Error("signatures lost in JSON roundtrip")
		}
	}
}
