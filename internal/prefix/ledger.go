package prefix

import (
	"encoding/json"
	"io"

	"prefix/internal/mem"
)

// Ledger stages, in pipeline order.
const (
	StageMining         = "hds-mining"
	StageReconstitution = "reconstitution"
	StageContext        = "context"
	StageRecycling      = "recycling"
	StagePlacement      = "placement"
)

// Decision is one recorded planning choice: a typed kind, the entities it
// concerns, and a human-readable reason. Counter is the plan counter
// index the decision belongs to, -1 when the decision is not
// counter-scoped (mining, reconstitution, truncation).
type Decision struct {
	Stage   string       `json:"stage"`
	Kind    string       `json:"kind"`
	Counter int          `json:"counter"`
	Sites   []mem.SiteID `json:"sites,omitempty"`
	Object  mem.ObjectID `json:"object,omitempty"`
	Offset  uint64       `json:"offset,omitempty"`
	Size    uint64       `json:"size,omitempty"`
	Reason  string       `json:"reason"`
}

// Ledger is the planner's decision record: every choice BuildPlanFromHot
// makes — classification, sharing, reconstitution actions, recycling
// geometry, slot placement, budget truncation — appended in planning
// order. Planning is deterministic, so the ledger is too: the same trace
// and config always produce the identical sequence. A nil *Ledger is a
// valid "don't record" sink, so the planner never branches.
type Ledger struct {
	Decisions []Decision `json:"decisions"`
}

// NewLedger returns an empty recording ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Record appends one decision; no-op on a nil ledger.
func (l *Ledger) Record(d Decision) {
	if l == nil {
		return
	}
	l.Decisions = append(l.Decisions, d)
}

// Len returns the number of recorded decisions (0 for nil).
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	return len(l.Decisions)
}

// ForSite returns every decision that names the site, in recording order.
func (l *Ledger) ForSite(site mem.SiteID) []Decision {
	if l == nil {
		return nil
	}
	var out []Decision
	for _, d := range l.Decisions {
		for _, s := range d.Sites {
			if s == site {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// ForCounter returns every decision scoped to the plan counter index.
func (l *Ledger) ForCounter(ci int) []Decision {
	if l == nil {
		return nil
	}
	var out []Decision
	for _, d := range l.Decisions {
		if d.Counter == ci {
			out = append(out, d)
		}
	}
	return out
}

// Stage returns every decision of one stage, in recording order.
func (l *Ledger) Stage(stage string) []Decision {
	if l == nil {
		return nil
	}
	var out []Decision
	for _, d := range l.Decisions {
		if d.Stage == stage {
			out = append(out, d)
		}
	}
	return out
}

// WriteJSON serializes the ledger (deterministically — slice order is
// recording order) for export and the prefix-analyze -ledger flag.
func (l *Ledger) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if l == nil {
		return enc.Encode(&Ledger{})
	}
	return enc.Encode(l)
}

// ReadLedgerJSON parses a ledger written by WriteJSON.
func ReadLedgerJSON(r io.Reader) (*Ledger, error) {
	var l Ledger
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, err
	}
	return &l, nil
}
