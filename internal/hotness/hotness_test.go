package hotness

import (
	"testing"

	"prefix/internal/mem"
	"prefix/internal/trace"
)

// buildTrace allocates per-site objects and gives each object the
// requested number of accesses.
func buildTrace(t *testing.T, perSite map[mem.SiteID][]uint64) *trace.Analysis {
	t.Helper()
	r := trace.NewRecorder()
	addr := mem.Addr(0x1000)
	var sites []mem.SiteID
	for s := range perSite {
		sites = append(sites, s)
	}
	// Deterministic site order.
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			if sites[j] < sites[i] {
				sites[i], sites[j] = sites[j], sites[i]
			}
		}
	}
	type obj struct {
		addr mem.Addr
		n    uint64
	}
	var objs []obj
	for _, s := range sites {
		for _, accesses := range perSite[s] {
			r.Alloc(s, 0, addr, 64)
			objs = append(objs, obj{addr, accesses})
			addr += 0x100
		}
	}
	for _, o := range objs {
		for i := uint64(0); i < o.n; i++ {
			r.Access(o.addr, 8, false)
		}
	}
	return trace.Analyze(r.Trace())
}

func TestSelectOrdering(t *testing.T) {
	a := buildTrace(t, map[mem.SiteID][]uint64{1: {100, 10, 50}})
	s := Select(a, Config{Coverage: 1, MinAccesses: 1})
	if len(s.Objects) != 3 {
		t.Fatalf("hot = %d", len(s.Objects))
	}
	if s.Objects[0].Accesses != 100 || s.Objects[1].Accesses != 50 || s.Objects[2].Accesses != 10 {
		t.Error("hot set not sorted by accesses")
	}
}

func TestSelectCoverageCutoff(t *testing.T) {
	a := buildTrace(t, map[mem.SiteID][]uint64{1: {90, 9, 1}})
	s := Select(a, Config{Coverage: 0.9, MinAccesses: 1})
	if len(s.Objects) != 1 {
		t.Fatalf("90%% coverage should take 1 object, got %d", len(s.Objects))
	}
	if s.CoveragePct() != 90 {
		t.Errorf("coverage = %v", s.CoveragePct())
	}
}

func TestSelectMinAccesses(t *testing.T) {
	a := buildTrace(t, map[mem.SiteID][]uint64{1: {100, 3, 3}})
	s := Select(a, Config{Coverage: 1, MinAccesses: 4})
	if len(s.Objects) != 1 {
		t.Errorf("min-access filter failed: %d hot", len(s.Objects))
	}
}

func TestSelectMaxObjects(t *testing.T) {
	a := buildTrace(t, map[mem.SiteID][]uint64{1: {10, 10, 10, 10, 10}})
	s := Select(a, Config{Coverage: 1, MaxObjects: 2, MinAccesses: 1})
	if len(s.Objects) != 2 {
		t.Errorf("cap failed: %d", len(s.Objects))
	}
}

func TestSelectPerSiteInstancesSorted(t *testing.T) {
	a := buildTrace(t, map[mem.SiteID][]uint64{1: {10, 100, 50}, 2: {70}})
	s := Select(a, Config{Coverage: 1, MinAccesses: 1})
	insts := s.PerSite[1]
	if len(insts) != 3 {
		t.Fatalf("site1 instances = %v", insts)
	}
	for i := 1; i < len(insts); i++ {
		if insts[i] <= insts[i-1] {
			t.Fatalf("instances not sorted: %v", insts)
		}
	}
	if got := s.Sites(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("sites = %v", got)
	}
}

func TestSelectBadCoverageDefaults(t *testing.T) {
	a := buildTrace(t, map[mem.SiteID][]uint64{1: {10}})
	s := Select(a, Config{Coverage: 0, MinAccesses: 1})
	if len(s.Objects) != 1 {
		t.Error("invalid coverage should fall back to a sane default")
	}
}

func TestPromoteSites(t *testing.T) {
	// 10 objects, 9 selected hot by coverage; promotion should add the
	// tenth because 90% of the site is hot.
	counts := make([]uint64, 10)
	for i := range counts {
		counts[i] = 100
	}
	counts[9] = 1 // barely accessed: excluded by coverage
	a := buildTrace(t, map[mem.SiteID][]uint64{1: counts})
	s := Select(a, Config{Coverage: 0.95, MinAccesses: 1})
	if len(s.Objects) != 9 {
		t.Fatalf("precondition: hot = %d, want 9", len(s.Objects))
	}
	s.PromoteSites(a, 0.8, 1)
	if len(s.Objects) != 10 {
		t.Errorf("promotion failed: hot = %d", len(s.Objects))
	}
	if len(s.PerSite[1]) != 10 {
		t.Errorf("per-site instances = %d", len(s.PerSite[1]))
	}
}

func TestPromoteSitesBelowThreshold(t *testing.T) {
	a := buildTrace(t, map[mem.SiteID][]uint64{1: {100, 100, 1, 1, 1, 1, 1, 1, 1, 1}})
	s := Select(a, Config{Coverage: 0.9, MinAccesses: 2})
	before := len(s.Objects)
	s.PromoteSites(a, 0.8, 1)
	if len(s.Objects) != before {
		t.Error("site with 20% hot fraction must not be promoted")
	}
}

func TestPromoteSitesMinAllocs(t *testing.T) {
	a := buildTrace(t, map[mem.SiteID][]uint64{1: {100, 1}})
	s := Select(a, Config{Coverage: 0.9, MinAccesses: 2})
	s.PromoteSites(a, 0.5, 8)
	if len(s.Objects) != 1 {
		t.Error("small sites must not be promoted")
	}
}

func TestLiveness(t *testing.T) {
	r := trace.NewRecorder()
	// Site 1 churns: never more than 2 live of 4 allocated.
	r.Alloc(1, 0, 0x1000, 16)
	r.Alloc(1, 0, 0x2000, 16)
	r.Free(0x1000)
	r.Alloc(1, 0, 0x3000, 16)
	r.Free(0x2000)
	r.Alloc(1, 0, 0x4000, 16)
	a := trace.Analyze(r.Trace())
	l := AnalyzeLiveness(a)
	if l.SiteMaxLive[1] != 2 || l.SiteAllocs[1] != 4 {
		t.Errorf("liveness: %+v", l)
	}
	if !l.RecyclingCandidate(1, 2) {
		t.Error("4 allocs / 2 live at ratio 2 should qualify")
	}
	if l.RecyclingCandidate(1, 3) {
		t.Error("ratio 3 should not qualify")
	}
	if l.RecyclingCandidate(99, 1) {
		t.Error("unknown site should not qualify")
	}
}
