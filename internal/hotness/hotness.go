// Package hotness selects the hot dynamic heap objects from a profiling
// trace. The paper's Figure 1 observation is that a small number of
// dynamic objects accounts for the bulk of heap accesses; the selector
// here takes the smallest prefix of objects (by access count) that covers
// a configurable share of all heap accesses, subject to a cap and a
// minimum-access floor, and reports the per-site dynamic instances —
// precisely the inputs PreFix needs for context inference.
//
// It also performs the lifetime analysis behind object recycling (§2.4):
// per-site peaks of simultaneously live objects.
package hotness

import (
	"sort"

	"prefix/internal/mem"
	"prefix/internal/trace"
)

// Config controls hot object selection.
type Config struct {
	// Coverage is the target share of heap accesses the hot set should
	// cover, in (0, 1].
	Coverage float64
	// MaxObjects caps the hot set ("preallocating memory for a fixed
	// small number of hot objects"). 0 means no cap.
	MaxObjects int
	// MinAccesses drops objects accessed fewer times than this.
	MinAccesses uint64
}

// DefaultConfig covers 96% of heap accesses with at most 4096 objects.
func DefaultConfig() Config {
	return Config{Coverage: 0.96, MaxObjects: 4096, MinAccesses: 4}
}

// Set is the selected hot set.
type Set struct {
	// Objects are the hot objects, most accessed first.
	Objects []*trace.Object
	// IDs is the same selection as a membership set.
	IDs map[mem.ObjectID]bool
	// PerSite lists, for each site with at least one hot object, the hot
	// dynamic instances in increasing order.
	PerSite map[mem.SiteID][]mem.Instance
	// CoveredAccesses is the number of heap accesses to hot objects.
	CoveredAccesses uint64
	// HeapAccesses is the total heap accesses in the trace.
	HeapAccesses uint64
}

// CoveragePct returns the share of heap accesses covered by the hot set,
// in percent (the Figure 1 bar height).
func (s *Set) CoveragePct() float64 {
	if s.HeapAccesses == 0 {
		return 0
	}
	return 100 * float64(s.CoveredAccesses) / float64(s.HeapAccesses)
}

// Sites returns the hot allocation sites in ascending order.
func (s *Set) Sites() []mem.SiteID {
	out := make([]mem.SiteID, 0, len(s.PerSite))
	for site := range s.PerSite {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Select picks the hot set from an analyzed trace.
func Select(a *trace.Analysis, cfg Config) *Set {
	if cfg.Coverage <= 0 || cfg.Coverage > 1 {
		cfg.Coverage = 0.9
	}
	objs := make([]*trace.Object, 0, len(a.Objects))
	for _, o := range a.Objects {
		if o.Accesses >= cfg.MinAccesses && o.Accesses > 0 {
			objs = append(objs, o)
		}
	}
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].Accesses != objs[j].Accesses {
			return objs[i].Accesses > objs[j].Accesses
		}
		return objs[i].ID < objs[j].ID // deterministic tie-break
	})

	target := uint64(cfg.Coverage * float64(a.HeapAccesses))
	s := &Set{
		IDs:          make(map[mem.ObjectID]bool),
		PerSite:      make(map[mem.SiteID][]mem.Instance),
		HeapAccesses: a.HeapAccesses,
	}
	for _, o := range objs {
		if cfg.MaxObjects > 0 && len(s.Objects) >= cfg.MaxObjects {
			break
		}
		if s.CoveredAccesses >= target && len(s.Objects) > 0 {
			break
		}
		s.Objects = append(s.Objects, o)
		s.IDs[o.ID] = true
		s.PerSite[o.Site] = append(s.PerSite[o.Site], o.Instance)
		s.CoveredAccesses += o.Accesses
	}
	for site := range s.PerSite {
		insts := s.PerSite[site]
		sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	}
	return s
}

// PromoteSites extends the hot set with *every* object of any site whose
// selected-hot fraction is at least threshold (and which allocated at
// least minAllocs objects). This is how "all ids" sites (Table 2) arise:
// when coverage-based selection already marks nearly all of a site's
// instances hot, the paper's planner treats the whole site as hot, which
// both simplifies the runtime check (no id comparison at all) and enables
// recycling.
func (s *Set) PromoteSites(a *trace.Analysis, threshold float64, minAllocs uint64) {
	// Promote in sorted site order: promoted objects are appended to
	// s.Objects, so ranging over the PerSite map here would make the
	// tail ordering of the hot set depend on map iteration order.
	for _, site := range s.Sites() {
		insts := s.PerSite[site]
		total := a.SiteAllocs[site]
		if total < minAllocs || float64(len(insts)) < threshold*float64(total) {
			continue
		}
		if uint64(len(insts)) == total {
			continue // already all hot
		}
		for _, id := range a.SiteObjects[site] {
			o := a.Object(id)
			if s.IDs[o.ID] {
				continue
			}
			s.Objects = append(s.Objects, o)
			s.IDs[o.ID] = true
			s.PerSite[site] = append(s.PerSite[site], o.Instance)
			s.CoveredAccesses += o.Accesses
		}
		insts = s.PerSite[site]
		sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	}
}

// Liveness is the per-site recycling analysis.
type Liveness struct {
	// SiteAllocs is the total dynamic allocations per site.
	SiteAllocs map[mem.SiteID]uint64
	// SiteMaxLive is the peak simultaneously-live object count per site.
	SiteMaxLive map[mem.SiteID]uint64
}

// AnalyzeLiveness extracts the lifetime facts the recycling planner needs.
func AnalyzeLiveness(a *trace.Analysis) Liveness {
	return Liveness{SiteAllocs: a.SiteAllocs, SiteMaxLive: a.SiteMaxLive}
}

// RecyclingCandidate reports whether a site allocates many objects of
// which only a few are simultaneously live — the §2.4 opportunity. ratio
// is the required allocs/max-live factor (the paper's swissmap/leela class
// sites exceed it by orders of magnitude).
func (l Liveness) RecyclingCandidate(site mem.SiteID, ratio float64) bool {
	allocs := l.SiteAllocs[site]
	live := l.SiteMaxLive[site]
	if live == 0 || allocs == 0 {
		return false
	}
	return float64(allocs) >= ratio*float64(live)
}
