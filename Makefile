# Developer entry points. `make check` is the tier-1 gate every PR must
# pass (see ROADMAP.md): formatting, vet, build, and the full test suite
# under the race detector.

GO ?= go

# Shared flags for the regression-smoke invocations below: two
# benchmarks at reduced scale through the worker pool. -shards is pinned
# to 1 so the host-cost gates compare like-for-like against the
# committed baseline regardless of the runner's core count (the smoke
# traces are small enough that shard fan-out overhead would otherwise
# dominate); shard-smoke overrides it per invocation — the last -shards
# on the command line wins.
SMOKE_ARGS = -scale bench -jobs 4 -only table3 -bench mcf,health -shards 1

.PHONY: check fmt vet lint lint-perf build test test-short race bench bench-micro bench-smoke bench-baseline bench-gate bench-trajectory stream-smoke shard-smoke perf-smoke explain-smoke clean

check: fmt vet lint build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Repo-specific invariants (determinism, span lifecycle, metric names,
# hot-path zero-alloc/zero-dispatch, compiler escape/inline budget); see
# DESIGN.md "Static invariants" / "Hot-path static invariants" and
# internal/analysis.
lint:
	$(GO) run ./cmd/prefix-lint ./...

# Hot-path performance gate, separated out for CI artifact upload: the
# hotalloc/hotcall/escapebudget family over the whole tree with
# machine-readable findings, plus a freshly recorded escape budget
# diffed against the committed one. Findings fail the target; budget
# drift that breaks no invariant (e.g. an inline cost change) is
# surfaced in lint-out/escape-budget.diff but does not fail.
lint-perf:
	@rm -rf lint-out && mkdir -p lint-out
	@$(GO) run ./cmd/prefix-lint -analyzers hotalloc,hotcall,escapebudget -json ./... > lint-out/findings.json; \
	status=$$?; \
	$(GO) run ./cmd/prefix-lint -analyzers escapebudget -record -budget lint-out/escape-budget.json ./... 2>/dev/null; \
	diff -u testdata/escape-budget.json lint-out/escape-budget.json > lint-out/escape-budget.diff; \
	if [ -s lint-out/escape-budget.diff ]; then \
		echo "lint-perf: escape budget drifted from testdata/escape-budget.json (see lint-out/escape-budget.diff)"; \
	fi; \
	if [ $$status -ne 0 ]; then \
		echo "lint-perf: hot-path findings:"; cat lint-out/findings.json; exit $$status; \
	fi; \
	echo "lint-perf: hot-path invariants clean"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick iteration loop: skips the long pipeline end-to-end tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# One-iteration smoke of the inner-loop microbenchmarks (cache probe,
# hierarchy walk, machine event loop, miners). Catches compile breakage
# and gross regressions in CI without paying for a real measurement; use
# `make bench` for numbers.
bench-micro:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ \
		./internal/cachesim ./internal/machine ./internal/hds ./internal/trace

# Fast end-to-end smoke of the parallel harness.
bench-smoke:
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS)

# Refresh the committed regression-gate baseline (same run as bench-gate).
bench-baseline:
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) \
		-record-out testdata/bench-smoke-baseline.json > /dev/null

# Regression gate: rerun the smoke suite and diff it against the
# committed baseline. The threshold is generous because CI only needs to
# catch breakage, not noise (the simulation itself is deterministic).
bench-gate:
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) \
		-baseline testdata/bench-smoke-baseline.json -regress-pct 50

# Host-cost smoke gate: the perfstat end-to-end tests (every suite job
# carries a host sample; events/sec > 0; cost attribution tracks scale;
# attaching the collector leaves the report byte-identical and costs
# < 2% wall), then the baseline diff — schema-v2 baselines carry host
# fields, so an events/sec collapse past the slack-adjusted threshold
# fails the gate alongside the simulated metrics.
perf-smoke:
	$(GO) test ./internal/pipeline -run 'TestPerfSmoke|TestPerfScaleMonotone' -count=1
	$(GO) test ./cmd/prefix-bench -run TestPerfParityAndOverhead -count=1
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) \
		-baseline testdata/bench-smoke-baseline.json -regress-pct 50

# Print each benchmark's events/sec and miss-rate trends across the
# committed BENCH_*.json snapshots (no benchmarks are run).
bench-trajectory:
	$(GO) run ./cmd/prefix-trajectory

# Explainability gate: attribution must be purely observational — the
# smoke suite's report is byte-identical with and without -attrib (the
# attribution-only tests assert the same for the full paper tables) —
# and prefix-explain must produce a ledger-backed document per
# benchmark. Artifacts land in explain-out/ for CI upload.
explain-smoke:
	@rm -rf explain-out && mkdir -p explain-out
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) > explain-out/plain.txt
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) -attrib > explain-out/attrib.txt
	@if cmp -s explain-out/plain.txt explain-out/attrib.txt; then \
		echo "explain-smoke: -attrib report is byte-identical to the plain report"; \
	else \
		echo "explain-smoke: -attrib changed the report:"; \
		diff explain-out/plain.txt explain-out/attrib.txt | head -40; exit 1; \
	fi
	$(GO) run ./cmd/prefix-explain -scale bench -jobs 4 -bench mcf,health \
		-ledger-dir explain-out | tee explain-out/explain.txt
	@grep -q "best variant" explain-out/explain.txt || \
		{ echo "explain-smoke: prefix-explain produced no explanation"; exit 1; }

# Streaming parity gate: the smoke suite must produce byte-identical
# reports whether profiling traces are materialized in memory or
# streamed through the bounded-memory spill recorder.
stream-smoke:
	@tmpdir="$$(mktemp -d)"; trap 'rm -rf "$$tmpdir"' EXIT; \
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) > "$$tmpdir/mem.txt" && \
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) -stream -stream-chunk 4096 > "$$tmpdir/stream.txt" || exit 1; \
	if cmp -s "$$tmpdir/mem.txt" "$$tmpdir/stream.txt"; then \
		echo "stream-smoke: streaming report is byte-identical to the in-memory report"; \
	else \
		echo "stream-smoke: streaming report differs from the in-memory report:"; \
		diff "$$tmpdir/mem.txt" "$$tmpdir/stream.txt" | head -40; exit 1; \
	fi

# Sharded-analysis determinism gate: the smoke suite must produce
# byte-identical reports at every shard count, on both the in-memory
# and the streaming profile path. This is the merge's contract — shard
# count paces the analysis, it never changes a reported number.
shard-smoke:
	@tmpdir="$$(mktemp -d)"; trap 'rm -rf "$$tmpdir"' EXIT; \
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) -shards 1 > "$$tmpdir/shards1.txt" && \
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) -shards 4 > "$$tmpdir/shards4.txt" && \
	$(GO) run ./cmd/prefix-bench $(SMOKE_ARGS) -shards 8 -stream -stream-chunk 4096 > "$$tmpdir/shards8-stream.txt" || exit 1; \
	ok=1; \
	for f in shards4.txt shards8-stream.txt; do \
		if ! cmp -s "$$tmpdir/shards1.txt" "$$tmpdir/$$f"; then \
			echo "shard-smoke: $$f differs from the -shards 1 report:"; \
			diff "$$tmpdir/shards1.txt" "$$tmpdir/$$f" | head -40; ok=0; \
		fi; \
	done; \
	[ $$ok -eq 1 ] || exit 1; \
	echo "shard-smoke: reports are byte-identical at shards 1, 4, and 8 (stream)"

clean:
	$(GO) clean ./...
